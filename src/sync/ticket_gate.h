// Monotonic progress gate: consumers wait until a published counter reaches their
// target. This is the dependency-wait skeleton of x264 (a macroblock row of frame
// i may start once frame i-1 has encoded enough rows) and of dedup's ordered
// output stage.
#ifndef TCS_SYNC_TICKET_GATE_H_
#define TCS_SYNC_TICKET_GATE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>

#include "src/condsync/tm_condvar.h"
#include "src/core/mechanism.h"
#include "src/core/runtime.h"
#include "src/core/transaction.h"
#include "src/core/tvar.h"

namespace tcs {

class TicketGate {
 public:
  TicketGate(Runtime* rt, Mechanism mech);

  TicketGate(const TicketGate&) = delete;
  TicketGate& operator=(const TicketGate&) = delete;

  // Publishes progress; `value` must be monotonically non-decreasing.
  void Publish(std::uint64_t value);

  // Atomically increments the published value by one (concurrent-producer form).
  void Bump();

  // Blocks until published progress >= target.
  void WaitFor(std::uint64_t target);

  // Waits at most `timeout` for progress >= target; true iff reached.
  bool WaitForUpTo(std::uint64_t target, std::chrono::nanoseconds timeout);

  // Current value (transaction-free snapshot; for reporting only).
  std::uint64_t UnsafeValue() const { return value_.UnsafeRead(); }

  // WaitPred predicate: value >= args.v[1]; args.v[0] = TicketGate*.
  static bool ReachedPred(TmSystem& sys, const WaitArgs& args);

 private:
  Runtime* rt_;
  const Mechanism mech_;

  TVar<std::uint64_t> value_{0};

  std::mutex mu_;
  std::condition_variable cv_;
  std::unique_ptr<TmCondVar> tm_cv_;
};

}  // namespace tcs

#endif  // TCS_SYNC_TICKET_GATE_H_
