#include "src/sync/ticket_gate.h"

#include "src/common/assert.h"

namespace tcs {

TicketGate::TicketGate(Runtime* rt, Mechanism mech) : rt_(rt), mech_(mech) {
  TCS_CHECK_MSG(mech == Mechanism::kPthreads || rt != nullptr,
                "TM mechanisms need a Runtime");
  if (mech == Mechanism::kTmCondVar) {
    tm_cv_ = std::make_unique<TmCondVar>(rt->config().max_threads);
  }
}

bool TicketGate::ReachedPred(TmSystem& sys, const WaitArgs& args) {
  const auto* g = reinterpret_cast<const TicketGate*>(args.v[0]);
  TmWord v = sys.Read(g->value_.word());
  return v >= args.v[1];
}

void TicketGate::Publish(std::uint64_t value) {
  if (mech_ == Mechanism::kPthreads) {
    std::unique_lock<std::mutex> lk(mu_);
    TCS_DCHECK(value >= value_.UnsafeRead());
    value_.UnsafeWrite(value);
    cv_.notify_all();
    return;
  }
  Atomically(rt_->sys(), [&](Tx& tx) {
    tx.Store(value_, value);
    if (mech_ == Mechanism::kTmCondVar) {
      tx.CondBroadcast(*tm_cv_);
    }
  });
}

void TicketGate::Bump() {
  if (mech_ == Mechanism::kPthreads) {
    std::unique_lock<std::mutex> lk(mu_);
    value_.UnsafeWrite(value_.UnsafeRead() + 1);
    cv_.notify_all();
    return;
  }
  Atomically(rt_->sys(), [&](Tx& tx) {
    tx.Store(value_, tx.Load(value_) + 1);
    if (mech_ == Mechanism::kTmCondVar) {
      tx.CondBroadcast(*tm_cv_);
    }
  });
}

void TicketGate::WaitFor(std::uint64_t target) {
  if (mech_ == Mechanism::kPthreads) {
    std::unique_lock<std::mutex> lk(mu_);
    while (value_.UnsafeRead() < target) {
      cv_.wait(lk);
    }
    return;
  }
  Atomically(rt_->sys(), [&](Tx& tx) {
    if (tx.Load(value_) >= target) {
      return;
    }
    switch (mech_) {
      case Mechanism::kTmCondVar:
        tx.CondWait(*tm_cv_);
      case Mechanism::kWaitPred: {
        WaitArgs args;
        args.v[0] = reinterpret_cast<TmWord>(this);
        args.v[1] = target;
        args.n = 2;
        tx.WaitPred(&TicketGate::ReachedPred, args);
      }
      case Mechanism::kAwait:
        tx.Await(value_);
      case Mechanism::kRetry:
        tx.Retry();
      case Mechanism::kRetryOrig:
        tx.RetryOrig();
      default:
        tx.RestartNow();
    }
  });
}

bool TicketGate::WaitForUpTo(std::uint64_t target,
                             std::chrono::nanoseconds timeout) {
  if (mech_ == Mechanism::kPthreads) {
    std::unique_lock<std::mutex> lk(mu_);
    return cv_.wait_for(lk, timeout,
                        [&] { return value_.UnsafeRead() >= target; });
  }
  return Atomically(rt_->sys(), [&](Tx& tx) -> bool {
    if (tx.Load(value_) >= target) {
      return true;
    }
    WaitResult r;
    switch (mech_) {
      case Mechanism::kWaitPred: {
        WaitArgs args;
        args.v[0] = reinterpret_cast<TmWord>(this);
        args.v[1] = target;
        args.n = 2;
        r = tx.WaitPredFor(&TicketGate::ReachedPred, args, timeout);
        break;
      }
      case Mechanism::kAwait:
        r = tx.AwaitFor(timeout, value_);
        break;
      default:
        r = tx.RetryFor(timeout);
        break;
    }
    return r != WaitResult::kTimedOut;
  });
}

}  // namespace tcs
