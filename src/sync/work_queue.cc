#include "src/sync/work_queue.h"

#include "src/common/assert.h"

namespace tcs {

WorkQueue::WorkQueue(Runtime* rt, Mechanism mech, std::uint64_t capacity)
    : rt_(rt), mech_(mech), cap_(capacity) {
  TCS_CHECK(capacity > 0);
  TCS_CHECK_MSG(mech == Mechanism::kPthreads || rt != nullptr,
                "TM mechanisms need a Runtime");
  buf_ = std::make_unique<TVar<std::uint64_t>[]>(capacity);
  if (mech == Mechanism::kTmCondVar) {
    cv_notempty_ = std::make_unique<TmCondVar>(rt->config().max_threads);
    cv_notfull_ = std::make_unique<TmCondVar>(rt->config().max_threads);
  }
}

bool WorkQueue::CanPopPred(TmSystem& sys, const WaitArgs& args) {
  const auto* q = reinterpret_cast<const WorkQueue*>(args.v[0]);
  TmWord count = sys.Read(q->count_.word());
  if (count > 0) {
    return true;
  }
  return sys.Read(q->closed_.word()) != 0;
}

bool WorkQueue::CanPushPred(TmSystem& sys, const WaitArgs& args) {
  const auto* q = reinterpret_cast<const WorkQueue*>(args.v[0]);
  TmWord count = sys.Read(q->count_.word());
  return count < q->cap_;
}

void WorkQueue::PushPthreads(std::uint64_t task) {
  std::unique_lock<std::mutex> lk(mu_);
  while (count_.UnsafeRead() == cap_) {
    notfull_.wait(lk);
  }
  TCS_CHECK_MSG(closed_.UnsafeRead() == 0, "push to closed queue");
  std::uint64_t t = tail_.UnsafeRead();
  buf_[t % cap_].UnsafeWrite(task);
  tail_.UnsafeWrite(t + 1);
  count_.UnsafeWrite(count_.UnsafeRead() + 1);
  notempty_.notify_one();
}

std::optional<std::uint64_t> WorkQueue::PopPthreads() {
  std::unique_lock<std::mutex> lk(mu_);
  while (count_.UnsafeRead() == 0 && closed_.UnsafeRead() == 0) {
    notempty_.wait(lk);
  }
  if (count_.UnsafeRead() == 0) {
    return std::nullopt;
  }
  std::uint64_t h = head_.UnsafeRead();
  std::uint64_t t = buf_[h % cap_].UnsafeRead();
  head_.UnsafeWrite(h + 1);
  count_.UnsafeWrite(count_.UnsafeRead() - 1);
  notfull_.notify_one();
  return t;
}

std::optional<std::uint64_t> WorkQueue::PopPthreadsFor(
    std::chrono::nanoseconds timeout) {
  std::unique_lock<std::mutex> lk(mu_);
  if (!notempty_.wait_for(lk, timeout, [&] {
        return count_.UnsafeRead() > 0 || closed_.UnsafeRead() != 0;
      })) {
    return std::nullopt;
  }
  if (count_.UnsafeRead() == 0) {
    return std::nullopt;
  }
  std::uint64_t h = head_.UnsafeRead();
  std::uint64_t t = buf_[h % cap_].UnsafeRead();
  head_.UnsafeWrite(h + 1);
  count_.UnsafeWrite(count_.UnsafeRead() - 1);
  notfull_.notify_one();
  return t;
}

void WorkQueue::Push(std::uint64_t task) {
  if (mech_ == Mechanism::kPthreads) {
    PushPthreads(task);
    return;
  }
  Atomically(rt_->sys(), [&](Tx& tx) {
    std::uint64_t count = tx.Load(count_);
    if (count == cap_) {
      switch (mech_) {
        case Mechanism::kTmCondVar:
          tx.CondWait(*cv_notfull_);
        case Mechanism::kWaitPred: {
          WaitArgs args;
          args.v[0] = reinterpret_cast<TmWord>(this);
          args.n = 1;
          tx.WaitPred(&WorkQueue::CanPushPred, args);
        }
        case Mechanism::kAwait:
          tx.Await(count_);
        case Mechanism::kRetry:
          tx.Retry();
        case Mechanism::kRetryOrig:
          tx.RetryOrig();
        default:
          tx.RestartNow();
      }
    }
    TCS_CHECK_MSG(tx.Load(closed_) == 0, "push to closed queue");
    std::uint64_t t = tx.Load(tail_);
    tx.Store(buf_[t % cap_], task);
    tx.Store(tail_, t + 1);
    tx.Store(count_, count + 1);
    if (mech_ == Mechanism::kTmCondVar) {
      tx.CondSignal(*cv_notempty_);
    }
  });
}

std::optional<std::uint64_t> WorkQueue::Pop() {
  if (mech_ == Mechanism::kPthreads) {
    return PopPthreads();
  }
  return Atomically(rt_->sys(), [&](Tx& tx) -> std::optional<std::uint64_t> {
    std::uint64_t count = tx.Load(count_);
    if (count == 0) {
      if (tx.Load(closed_) != 0) {
        return std::nullopt;
      }
      switch (mech_) {
        case Mechanism::kTmCondVar:
          tx.CondWait(*cv_notempty_);
        case Mechanism::kWaitPred: {
          WaitArgs args;
          args.v[0] = reinterpret_cast<TmWord>(this);
          args.n = 1;
          tx.WaitPred(&WorkQueue::CanPopPred, args);
        }
        case Mechanism::kAwait:
          tx.Await(count_, closed_);
        case Mechanism::kRetry:
          tx.Retry();
        case Mechanism::kRetryOrig:
          tx.RetryOrig();
        default:
          tx.RestartNow();
      }
    }
    std::uint64_t h = tx.Load(head_);
    std::uint64_t t = tx.Load(buf_[h % cap_]);
    tx.Store(head_, h + 1);
    tx.Store(count_, count - 1);
    if (mech_ == Mechanism::kTmCondVar) {
      tx.CondSignal(*cv_notfull_);
    }
    return t;
  });
}

std::optional<std::uint64_t> WorkQueue::PopFor(std::chrono::nanoseconds timeout) {
  if (mech_ == Mechanism::kPthreads) {
    return PopPthreadsFor(timeout);
  }
  return Atomically(rt_->sys(), [&](Tx& tx) -> std::optional<std::uint64_t> {
    std::uint64_t count = tx.Load(count_);
    if (count == 0) {
      if (tx.Load(closed_) != 0) {
        return std::nullopt;
      }
      WaitResult r;
      switch (mech_) {
        case Mechanism::kWaitPred: {
          WaitArgs args;
          args.v[0] = reinterpret_cast<TmWord>(this);
          args.n = 1;
          r = tx.WaitPredFor(&WorkQueue::CanPopPred, args, timeout);
          break;
        }
        case Mechanism::kAwait:
          r = tx.AwaitFor(timeout, count_, closed_);
          break;
        default:
          r = tx.RetryFor(timeout);
          break;
      }
      if (r == WaitResult::kTimedOut) {
        return std::nullopt;
      }
      // A bounded wait that is satisfied restarts the transaction instead of
      // returning; reaching here with an empty queue is impossible.
      count = tx.Load(count_);
    }
    std::uint64_t h = tx.Load(head_);
    std::uint64_t t = tx.Load(buf_[h % cap_]);
    tx.Store(head_, h + 1);
    tx.Store(count_, count - 1);
    if (mech_ == Mechanism::kTmCondVar) {
      tx.CondSignal(*cv_notfull_);
    }
    return t;
  });
}

void WorkQueue::Close() {
  if (mech_ == Mechanism::kPthreads) {
    std::unique_lock<std::mutex> lk(mu_);
    closed_.UnsafeWrite(1);
    notempty_.notify_all();
    return;
  }
  Atomically(rt_->sys(), [&](Tx& tx) {
    tx.Store(closed_, std::uint64_t{1});
    if (mech_ == Mechanism::kTmCondVar) {
      tx.CondBroadcast(*cv_notempty_);
    }
  });
}

}  // namespace tcs
