#include "src/sync/work_queue.h"

#include "src/common/assert.h"

namespace tcs {

WorkQueue::WorkQueue(Runtime* rt, Mechanism mech, std::uint64_t capacity)
    : rt_(rt), mech_(mech), cap_(capacity) {
  TCS_CHECK(capacity > 0);
  TCS_CHECK_MSG(mech == Mechanism::kPthreads || rt != nullptr,
                "TM mechanisms need a Runtime");
  buf_ = std::make_unique<std::uint64_t[]>(capacity);
  if (mech == Mechanism::kTmCondVar) {
    cv_notempty_ = std::make_unique<TmCondVar>(rt->config().max_threads);
    cv_notfull_ = std::make_unique<TmCondVar>(rt->config().max_threads);
  }
}

bool WorkQueue::CanPopPred(TmSystem& sys, const WaitArgs& args) {
  const auto* q = reinterpret_cast<const WorkQueue*>(args.v[0]);
  TmWord count = sys.Read(reinterpret_cast<const TmWord*>(&q->count_));
  if (count > 0) {
    return true;
  }
  return sys.Read(reinterpret_cast<const TmWord*>(&q->closed_)) != 0;
}

bool WorkQueue::CanPushPred(TmSystem& sys, const WaitArgs& args) {
  const auto* q = reinterpret_cast<const WorkQueue*>(args.v[0]);
  TmWord count = sys.Read(reinterpret_cast<const TmWord*>(&q->count_));
  return count < q->cap_;
}

void WorkQueue::PushPthreads(std::uint64_t task) {
  std::unique_lock<std::mutex> lk(mu_);
  while (count_ == cap_) {
    notfull_.wait(lk);
  }
  TCS_CHECK_MSG(closed_ == 0, "push to closed queue");
  buf_[tail_ % cap_] = task;
  tail_++;
  count_++;
  notempty_.notify_one();
}

std::optional<std::uint64_t> WorkQueue::PopPthreads() {
  std::unique_lock<std::mutex> lk(mu_);
  while (count_ == 0 && closed_ == 0) {
    notempty_.wait(lk);
  }
  if (count_ == 0) {
    return std::nullopt;
  }
  std::uint64_t t = buf_[head_ % cap_];
  head_++;
  count_--;
  notfull_.notify_one();
  return t;
}

void WorkQueue::Push(std::uint64_t task) {
  if (mech_ == Mechanism::kPthreads) {
    PushPthreads(task);
    return;
  }
  Atomically(rt_->sys(), [&](Tx& tx) {
    std::uint64_t count = tx.Load(count_);
    if (count == cap_) {
      switch (mech_) {
        case Mechanism::kTmCondVar:
          tx.CondWait(*cv_notfull_);
        case Mechanism::kWaitPred: {
          WaitArgs args;
          args.v[0] = reinterpret_cast<TmWord>(this);
          args.n = 1;
          tx.WaitPred(&WorkQueue::CanPushPred, args);
        }
        case Mechanism::kAwait:
          tx.Await(count_);
        case Mechanism::kRetry:
          tx.Retry();
        case Mechanism::kRetryOrig:
          tx.RetryOrig();
        default:
          tx.RestartNow();
      }
    }
    TCS_CHECK_MSG(tx.Load(closed_) == 0, "push to closed queue");
    std::uint64_t t = tx.Load(tail_);
    tx.Store(buf_[t % cap_], task);
    tx.Store(tail_, t + 1);
    tx.Store(count_, count + 1);
    if (mech_ == Mechanism::kTmCondVar) {
      tx.CondSignal(*cv_notempty_);
    }
  });
}

std::optional<std::uint64_t> WorkQueue::Pop() {
  if (mech_ == Mechanism::kPthreads) {
    return PopPthreads();
  }
  return Atomically(rt_->sys(), [&](Tx& tx) -> std::optional<std::uint64_t> {
    std::uint64_t count = tx.Load(count_);
    if (count == 0) {
      if (tx.Load(closed_) != 0) {
        return std::nullopt;
      }
      switch (mech_) {
        case Mechanism::kTmCondVar:
          tx.CondWait(*cv_notempty_);
        case Mechanism::kWaitPred: {
          WaitArgs args;
          args.v[0] = reinterpret_cast<TmWord>(this);
          args.n = 1;
          tx.WaitPred(&WorkQueue::CanPopPred, args);
        }
        case Mechanism::kAwait:
          tx.Await(count_, closed_);
        case Mechanism::kRetry:
          tx.Retry();
        case Mechanism::kRetryOrig:
          tx.RetryOrig();
        default:
          tx.RestartNow();
      }
    }
    std::uint64_t h = tx.Load(head_);
    std::uint64_t t = tx.Load(buf_[h % cap_]);
    tx.Store(head_, h + 1);
    tx.Store(count_, count - 1);
    if (mech_ == Mechanism::kTmCondVar) {
      tx.CondSignal(*cv_notfull_);
    }
    return t;
  });
}

void WorkQueue::Close() {
  if (mech_ == Mechanism::kPthreads) {
    std::unique_lock<std::mutex> lk(mu_);
    closed_ = 1;
    notempty_.notify_all();
    return;
  }
  Atomically(rt_->sys(), [&](Tx& tx) {
    tx.Store(closed_, std::uint64_t{1});
    if (mech_ == Mechanism::kTmCondVar) {
      tx.CondBroadcast(*cv_notempty_);
    }
  });
}

}  // namespace tcs
