// Multi-producer multi-consumer bounded buffer — the paper's running example
// (Algorithm 2) and the micro-benchmark behind Figures 2.3-2.5.
//
// One shared-state implementation, seven condition-synchronization front ends
// (Figure 2.2): blocking Produce()/Consume() dispatch on the configured Mechanism.
// The transactional building blocks (Full/Empty/Put/Get) are public so that
// composite atomic operations — e.g. the Produce1Consume2 scenario of
// Algorithm 3 — can be built on top; with Retry/Await/WaitPred such compositions
// stay atomic, which is the paper's central programmability claim.
//
// Shared state lives in TVar<T> cells (core/tvar.h). Bounded variants
// (TryProduceFor/TryConsumeFor) give up after a timeout, mapping each TM
// mechanism onto its timed wait (RetryFor/AwaitFor/WaitPredFor).
#ifndef TCS_SYNC_BOUNDED_BUFFER_H_
#define TCS_SYNC_BOUNDED_BUFFER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>

#include "src/condsync/tm_condvar.h"
#include "src/core/mechanism.h"
#include "src/core/runtime.h"
#include "src/core/transaction.h"
#include "src/core/tvar.h"

namespace tcs {

class BoundedBuffer {
 public:
  // `rt` may be null only for Mechanism::kPthreads.
  BoundedBuffer(Runtime* rt, Mechanism mech, std::uint64_t capacity);

  BoundedBuffer(const BoundedBuffer&) = delete;
  BoundedBuffer& operator=(const BoundedBuffer&) = delete;

  // Blocking operations, synchronized per the configured mechanism.
  void Produce(std::uint64_t x);
  std::uint64_t Consume();

  // Bounded operations: wait at most `timeout` (total elapsed, across internal
  // restarts) for space / an element. Return false / nullopt on timeout without
  // having modified the buffer. kNoTimeout degrades to the blocking form.
  bool TryProduceFor(std::uint64_t x, std::chrono::nanoseconds timeout);
  std::optional<std::uint64_t> TryConsumeFor(std::chrono::nanoseconds timeout);

  // Non-blocking transactional building blocks (Algorithm 2's internal methods).
  bool Full(Tx& tx) const { return tx.Load(count_) == cap_; }
  bool Empty(Tx& tx) const { return tx.Load(count_) == 0; }
  void Put(Tx& tx, std::uint64_t x);
  std::uint64_t Get(Tx& tx);
  std::uint64_t Count(Tx& tx) const { return tx.Load(count_); }

  // The count cell, for Await address lists and custom predicates.
  const TVar<std::uint64_t>& count_ref() const { return count_; }

  std::uint64_t capacity() const { return cap_; }
  Mechanism mechanism() const { return mech_; }

  // WaitPred predicates (Figure 2.2, left column). args.v[0] = BoundedBuffer*.
  static bool NotFullPred(TmSystem& sys, const WaitArgs& args);
  static bool NotEmptyPred(TmSystem& sys, const WaitArgs& args);

  // Pre-populates the buffer without synchronization (single-threaded setup; the
  // benchmark half-fills the buffer before each trial, §2.4.1).
  void UnsafePrefill(std::uint64_t n, std::uint64_t value_base);

 private:
  void ProducePthreads(std::uint64_t x);
  std::uint64_t ConsumePthreads();
  bool TryProducePthreadsFor(std::uint64_t x, std::chrono::nanoseconds timeout);
  std::optional<std::uint64_t> TryConsumePthreadsFor(
      std::chrono::nanoseconds timeout);

  // Timed wait for "not full"/"not empty" using the mechanism's bounded wait;
  // returns kTimedOut from a fresh attempt, otherwise descheds (never returns).
  WaitResult WaitNotFullFor(Tx& tx, std::chrono::nanoseconds timeout);
  WaitResult WaitNotEmptyFor(Tx& tx, std::chrono::nanoseconds timeout);

  Runtime* rt_;
  const Mechanism mech_;
  const std::uint64_t cap_;

  // Shared fields of Algorithm 2; TVar cells under TM mechanisms, accessed
  // through UnsafeRead/UnsafeWrite under the pthread lock.
  std::unique_ptr<TVar<std::uint64_t>[]> buf_;
  TVar<std::uint64_t> count_{0};
  TVar<std::uint64_t> nextprod_{0};
  TVar<std::uint64_t> nextcons_{0};

  // Pthreads baseline state.
  std::mutex mu_;
  std::condition_variable notempty_;
  std::condition_variable notfull_;

  // TMCondVar baseline state.
  std::unique_ptr<TmCondVar> cv_notempty_;
  std::unique_ptr<TmCondVar> cv_notfull_;
};

}  // namespace tcs

#endif  // TCS_SYNC_BOUNDED_BUFFER_H_
