// Bounded, closeable MPMC task queue, mechanism-parameterized.
//
// This is the synchronization skeleton of the task-pool PARSEC benchmarks
// (bodytrack, raytrace, ferret's stages): workers block on "queue non-empty or
// closed", submitters block on "queue not full". Closing wakes all poppers.
// Shared state lives in TVar cells; PopFor() bounds the worker's wait so pools
// can implement idle-timeout shutdown.
#ifndef TCS_SYNC_WORK_QUEUE_H_
#define TCS_SYNC_WORK_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>

#include "src/condsync/tm_condvar.h"
#include "src/core/mechanism.h"
#include "src/core/runtime.h"
#include "src/core/transaction.h"
#include "src/core/tvar.h"

namespace tcs {

class WorkQueue {
 public:
  WorkQueue(Runtime* rt, Mechanism mech, std::uint64_t capacity);

  WorkQueue(const WorkQueue&) = delete;
  WorkQueue& operator=(const WorkQueue&) = delete;

  // Blocks while the queue is full (unless closed; pushing to a closed queue is a
  // programming error).
  void Push(std::uint64_t task);

  // Blocks while the queue is empty and open; returns nullopt once the queue is
  // closed and drained.
  std::optional<std::uint64_t> Pop();

  // Like Pop(), but waits at most `timeout`: returns nullopt on timeout as well
  // as on closed-and-drained. (Callers that must distinguish can check
  // closed() afterwards.)
  std::optional<std::uint64_t> PopFor(std::chrono::nanoseconds timeout);

  // Marks the queue closed and wakes all blocked poppers.
  void Close();

  std::uint64_t capacity() const { return cap_; }

  // WaitPred predicates; args.v[0] = WorkQueue*.
  static bool CanPopPred(TmSystem& sys, const WaitArgs& args);
  static bool CanPushPred(TmSystem& sys, const WaitArgs& args);

 private:
  void PushPthreads(std::uint64_t task);
  std::optional<std::uint64_t> PopPthreads();
  std::optional<std::uint64_t> PopPthreadsFor(std::chrono::nanoseconds timeout);

  Runtime* rt_;
  const Mechanism mech_;
  const std::uint64_t cap_;

  std::unique_ptr<TVar<std::uint64_t>[]> buf_;
  TVar<std::uint64_t> count_{0};
  TVar<std::uint64_t> head_{0};
  TVar<std::uint64_t> tail_{0};
  TVar<std::uint64_t> closed_{0};

  std::mutex mu_;
  std::condition_variable notempty_;
  std::condition_variable notfull_;

  std::unique_ptr<TmCondVar> cv_notempty_;
  std::unique_ptr<TmCondVar> cv_notfull_;
};

}  // namespace tcs

#endif  // TCS_SYNC_WORK_QUEUE_H_
