// Reusable N-thread phase barrier, mechanism-parameterized.
//
// This is the synchronization skeleton of the barrier-style PARSEC benchmarks
// (fluidanimate, streamcluster, facesim timestep loops). §2.3 notes that the
// classic two-wait reusable barrier cannot be ported to Retry-style mechanisms by
// simple substitution, because the arrival update must become visible while the
// thread waits. The transactional design therefore splits each crossing into two
// transactions: one that publishes the arrival (and, for the last arrival,
// advances the generation), and a read-only one that waits for the generation to
// change. That second transaction is a pure precondition, which is exactly what
// Retry/Await/WaitPred express.
#ifndef TCS_SYNC_PHASE_BARRIER_H_
#define TCS_SYNC_PHASE_BARRIER_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>

#include "src/condsync/tm_condvar.h"
#include "src/core/mechanism.h"
#include "src/core/runtime.h"
#include "src/core/transaction.h"
#include "src/core/tvar.h"

namespace tcs {

class PhaseBarrier {
 public:
  PhaseBarrier(Runtime* rt, Mechanism mech, int parties);

  PhaseBarrier(const PhaseBarrier&) = delete;
  PhaseBarrier& operator=(const PhaseBarrier&) = delete;

  // Blocks until all `parties` threads have arrived at this phase.
  void ArriveAndWait();

  // WaitPred predicate: generation advanced past args.v[1]. args.v[0] = barrier.
  static bool GenerationChangedPred(TmSystem& sys, const WaitArgs& args);

 private:
  Runtime* rt_;
  const Mechanism mech_;
  const std::uint64_t parties_;

  TVar<std::uint64_t> arrived_{0};
  TVar<std::uint64_t> generation_{0};

  std::mutex mu_;
  std::condition_variable cv_;
  std::unique_ptr<TmCondVar> tm_cv_;
};

}  // namespace tcs

#endif  // TCS_SYNC_PHASE_BARRIER_H_
