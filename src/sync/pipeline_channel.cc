#include "src/sync/pipeline_channel.h"

#include "src/common/assert.h"
#include "src/core/transaction.h"

namespace tcs {

PipelineChannel::PipelineChannel(Runtime* rt, Mechanism mech, std::uint64_t capacity,
                                 int producers)
    : queue_(rt, mech, capacity),
      rt_(rt),
      mech_(mech),
      producers_left_(static_cast<std::uint64_t>(producers)) {
  TCS_CHECK(producers > 0);
}

void PipelineChannel::ProducerDone() {
  std::uint64_t left;
  if (mech_ == Mechanism::kPthreads) {
    std::lock_guard<std::mutex> lk(mu_);
    std::uint64_t cur = producers_left_.UnsafeRead();
    TCS_CHECK_MSG(cur > 0, "ProducerDone called more times than producers");
    producers_left_.UnsafeWrite(cur - 1);
    left = cur - 1;
  } else {
    left = Atomically(rt_->sys(), [&](Tx& tx) -> std::uint64_t {
      std::uint64_t cur = tx.Load(producers_left_);
      TCS_CHECK_MSG(cur > 0, "ProducerDone called more times than producers");
      tx.Store(producers_left_, cur - 1);
      return cur - 1;
    });
  }
  if (left == 0) {
    queue_.Close();
  }
}

}  // namespace tcs
