#include "src/sync/pipeline_channel.h"

#include "src/common/assert.h"

namespace tcs {

PipelineChannel::PipelineChannel(Runtime* rt, Mechanism mech, std::uint64_t capacity,
                                 int producers)
    : queue_(rt, mech, capacity), producers_left_(producers) {
  TCS_CHECK(producers > 0);
}

void PipelineChannel::ProducerDone() {
  int left = producers_left_.fetch_sub(1, std::memory_order_acq_rel) - 1;
  TCS_CHECK_MSG(left >= 0, "ProducerDone called more times than producers");
  if (left == 0) {
    queue_.Close();
  }
}

}  // namespace tcs
